(* Tests for the EmbSan core: distiller merge rules, DSL round-trip, shadow
   semantics, host KASAN/KCSAN runtimes, prober modes and end-to-end
   detection through the full prepare/attach flow. *)

open Embsan_isa
open Embsan_emu
open Embsan_core
open Embsan_minic

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Distiller ------------------------------------------------------------------ *)

let distiller_union () =
  let spec = Distiller.distill [ Api_spec.kasan (); Api_spec.kcsan () ] in
  Alcotest.(check (list string)) "sanitizers" [ "kasan"; "kcsan" ] spec.sanitizers;
  (* union of interception points: load appears once *)
  let loads =
    List.filter (fun i -> i.Dsl.i_point = Api_spec.P_load) spec.intercepts
  in
  Alcotest.(check int) "one load intercept" 1 (List.length loads);
  let load = List.hd loads in
  (* union of arguments, canonical order *)
  Alcotest.(check (list string))
    "merged args" [ "addr"; "size"; "pc"; "hart" ] load.i_args;
  (* both sanitizers attached with their own argument annotations *)
  Alcotest.(check (list string))
    "handlers"
    [ "kasan.check_access"; "kcsan.access" ]
    (List.map (fun h -> h.Dsl.h_san ^ "." ^ h.Dsl.h_op) load.i_handlers);
  let kasan_h = List.hd load.i_handlers in
  Alcotest.(check (list string)) "kasan segment" [ "addr"; "size" ] kasan_h.h_args;
  (* store merges value from kcsan *)
  let store =
    List.find (fun i -> i.Dsl.i_point = Api_spec.P_store) spec.intercepts
  in
  Alcotest.(check (list string))
    "store args" [ "addr"; "size"; "value"; "pc"; "hart" ] store.i_args;
  (* kasan-only points survive *)
  Alcotest.(check bool) "func_alloc present" true
    (Dsl.wants spec Api_spec.P_func_alloc "kasan");
  Alcotest.(check bool) "kcsan not on func_alloc" false
    (Dsl.wants spec Api_spec.P_func_alloc "kcsan")

let distiller_single () =
  let spec = Distiller.distill [ Api_spec.kcsan () ] in
  Alcotest.(check bool) "no alloc point" true
    (Dsl.find_intercept spec Api_spec.P_func_alloc = None);
  Alcotest.(check bool) "load wanted" true (Dsl.wants spec Api_spec.P_load "kcsan")

let header_parser_rejects () =
  (match Api_spec.parse_header "check load(a) => x;" with
  | _ -> Alcotest.fail "expected error (no sanitizer decl)"
  | exception Api_spec.Spec_error _ -> ());
  match Api_spec.parse_header "sanitizer s;\nfrobnicate load(a) => x;" with
  | _ -> Alcotest.fail "expected error (bad role)"
  | exception Api_spec.Spec_error _ -> ()

(* --- DSL ------------------------------------------------------------------------ *)

let dsl_roundtrip () =
  let spec =
    {
      Dsl.sanitizers = [ "kasan"; "kcsan" ];
      arch = Some Arch.Mips_ev;
      intercepts =
        (Distiller.distill [ Api_spec.kasan (); Api_spec.kcsan () ]).intercepts;
      functions =
        [
          { f_name = "kmalloc"; f_addr = 0x12345; f_size = 0x100; f_kind = `Alloc 0 };
          { f_name = "kfree"; f_addr = 0x23456; f_size = 0x80; f_kind = `Free 0 };
        ];
      exempts = [ { e_name = "slab_scan"; e_addr = 0x34567; e_size = 0x40 } ];
      init =
        [
          Region { name = "heap"; addr = 0x20000; size = 0x8000 };
          Poison { addr = 0x20000; size = 0x8000; code = "heap" };
          Unpoison { addr = 0x20100; size = 64 };
          Alloc { ptr = 0x20100; size = 64 };
          Note "recorded by dry run";
        ];
    }
  in
  let text = Dsl.to_string spec in
  let back = Dsl.parse text in
  Alcotest.(check string) "round trip" text (Dsl.to_string back);
  Alcotest.(check int) "intercepts" (List.length spec.intercepts)
    (List.length back.intercepts);
  Alcotest.(check int) "init" (List.length spec.init) (List.length back.init);
  Alcotest.(check bool) "arch" true (back.arch = Some Arch.Mips_ev)

let dsl_parse_errors () =
  (match Dsl.parse "gibberish here;" with
  | _ -> Alcotest.fail "expected error"
  | exception Dsl.Dsl_error _ -> ());
  match Dsl.parse "sanitizers kasan;\nintercept load addr;" with
  | _ -> Alcotest.fail "expected error (no ->)"
  | exception Dsl.Dsl_error _ -> ()

(* --- Shadow ----------------------------------------------------------------------- *)

let base = 0x1_0000
let mk_shadow () = Shadow.create ~ram_base:base ~ram_size:0x1_0000

let shadow_basics () =
  let s = mk_shadow () in
  Alcotest.(check bool) "fresh valid" true
    (Shadow.check s ~addr:(base + 100) ~size:4 = Shadow.Valid);
  Shadow.poison s ~addr:(base + 64) ~size:32 Shadow.Heap_redzone;
  (match Shadow.check s ~addr:(base + 64) ~size:1 with
  | Shadow.Invalid Shadow.Heap_redzone -> ()
  | _ -> Alcotest.fail "expected heap redzone");
  Shadow.unpoison s ~addr:(base + 64) ~size:32;
  Alcotest.(check bool) "unpoisoned" true
    (Shadow.check s ~addr:(base + 64) ~size:4 = Shadow.Valid);
  (* outside RAM: not the shadow's business *)
  Alcotest.(check bool) "mmio valid" true
    (Shadow.check s ~addr:0xF000_0000 ~size:4 = Shadow.Valid)

let shadow_partial_granule () =
  let s = mk_shadow () in
  Shadow.poison s ~addr:(base + 0) ~size:64 Shadow.Heap_redzone;
  (* allocate 13 bytes: one full granule + 5-byte partial *)
  Shadow.unpoison s ~addr:(base + 0) ~size:13;
  Alcotest.(check bool) "byte 12 ok" true
    (Shadow.check s ~addr:(base + 12) ~size:1 = Shadow.Valid);
  (match Shadow.check s ~addr:(base + 13) ~size:1 with
  | Shadow.Invalid (Shadow.Partial 5) -> ()
  | Shadow.Invalid c -> Alcotest.failf "wrong code %s" (Shadow.code_name c)
  | Shadow.Valid -> Alcotest.fail "byte 13 must be invalid");
  (* 4-byte access straddling the partial boundary *)
  (match Shadow.check s ~addr:(base + 10) ~size:4 with
  | Shadow.Invalid _ -> ()
  | Shadow.Valid -> Alcotest.fail "straddle must fail")

let shadow_cross_granule_start () =
  let s = mk_shadow () in
  (* first granule poisoned, second clean: access starting in the first *)
  Shadow.poison s ~addr:base ~size:8 Shadow.Freed;
  Shadow.unpoison s ~addr:(base + 8) ~size:8;
  match Shadow.check s ~addr:(base + 6) ~size:4 with
  | Shadow.Invalid Shadow.Freed -> ()
  | _ -> Alcotest.fail "start-granule poison must be caught"

let shadow_qcheck =
  let open QCheck2 in
  let gen =
    Gen.(
      quad (int_range 0 2040) (int_range 1 64) (int_range 0 2040) (int_range 1 64))
  in
  Test.make ~name:"poison/unpoison then check agrees with byte model" ~count:300
    gen (fun (a1, s1, a2, s2) ->
      (* model: byte array; poison region1, unpoison region2 *)
      let s = mk_shadow () in
      Shadow.poison s ~addr:(base + a1) ~size:s1 Shadow.Heap_redzone;
      Shadow.unpoison s ~addr:(base + (a2 / 8 * 8)) ~size:s2;
      (* single-byte checks must never crash and be monotone with granules *)
      let ok = ref true in
      for off = 0 to 2100 do
        match Shadow.check s ~addr:(base + off) ~size:1 with
        | Shadow.Valid | Shadow.Invalid _ -> ()
        | exception _ -> ok := false
      done;
      !ok)

(* Every valid encoding byte must survive code_of_byte/byte_of_code. *)
let shadow_byte_roundtrip () =
  List.iter
    (fun b ->
      Alcotest.(check int)
        (Printf.sprintf "byte 0x%x" b)
        b
        (Shadow.byte_of_code (Shadow.code_of_byte b)))
    [ 0x00; 1; 2; 3; 4; 5; 6; 7; 0xF1; 0xF3; 0xF9; 0xFB ]

(* Regression: [Partial k] outside 1..7 used to alias to a different code
   via [k land 7] (e.g. [Partial 8] encoded as [Addressable]), silently
   breaking the round-trip.  Construction-time validation must reject it. *)
let shadow_partial_roundtrip =
  let open QCheck2 in
  Test.make ~name:"Partial round-trips in 1..7, rejected outside" ~count:200
    Gen.(int_range (-4) 12)
    (fun k ->
      if k >= 1 && k <= 7 then
        Shadow.code_of_byte (Shadow.byte_of_code (Shadow.Partial k))
        = Shadow.Partial k
        && Shadow.byte_of_code (Shadow.partial k) = k
      else
        (match Shadow.byte_of_code (Shadow.Partial k) with
        | _ -> false
        | exception Invalid_argument _ -> true)
        &&
        match Shadow.partial k with
        | _ -> false
        | exception Invalid_argument _ -> true)

(* --- Host KASAN -------------------------------------------------------------------- *)

let mk_kasan () =
  let sink = Report.create_sink () in
  let shadow = mk_shadow () in
  let k = Kasan.create ~shadow ~sink ~symbolize:(fun _ -> None) () in
  (k, sink)

let kinds sink =
  List.map (fun (r : Report.t) -> r.kind) (Report.unique_reports sink)

let kasan_heap_lifecycle () =
  let k, sink = mk_kasan () in
  (* poison heap, allocate, access, free, use-after-free, double free *)
  Kasan.on_poison k ~addr:(base + 0x100) ~size:0x100 Shadow.Heap_redzone;
  Kasan.on_alloc k ~ptr:(base + 0x120) ~size:24 ~pc:0x1111;
  Kasan.on_access k ~addr:(base + 0x120) ~size:4 ~is_write:false ~pc:1 ~hart:0;
  Kasan.on_access k ~addr:(base + 0x137) ~size:1 ~is_write:false ~pc:2 ~hart:0;
  Alcotest.(check int) "clean so far" 0 (Report.count sink);
  (* one past the end *)
  Kasan.on_access k ~addr:(base + 0x138) ~size:1 ~is_write:true ~pc:3 ~hart:0;
  Alcotest.(check (list bool)) "oob" [ true ]
    (List.map (fun k -> k = Report.Oob_access) (kinds sink));
  Kasan.on_free k ~ptr:(base + 0x120) ~pc:4 ~hart:0;
  Kasan.on_access k ~addr:(base + 0x124) ~size:4 ~is_write:false ~pc:5 ~hart:0;
  Alcotest.(check bool) "uaf" true (List.mem Report.Use_after_free (kinds sink));
  Kasan.on_free k ~ptr:(base + 0x120) ~pc:6 ~hart:0;
  Alcotest.(check bool) "double free" true
    (List.mem Report.Double_free (kinds sink));
  Kasan.on_free k ~ptr:(base + 0xF00) ~pc:7 ~hart:0;
  Alcotest.(check bool) "invalid free" true
    (List.mem Report.Invalid_free (kinds sink))

let kasan_null_deref () =
  let k, sink = mk_kasan () in
  Kasan.on_access k ~addr:8 ~size:4 ~is_write:false ~pc:1 ~hart:0;
  Alcotest.(check bool) "null" true (List.mem Report.Null_deref (kinds sink))

let kasan_globals_redzone () =
  let k, sink = mk_kasan () in
  let g = base + 0x200 in
  Kasan.on_register_global k ~addr:g ~size:20;
  Kasan.on_access k ~addr:(g + 19) ~size:1 ~is_write:false ~pc:1 ~hart:0;
  Alcotest.(check int) "in-bounds tail ok" 0 (Report.count sink);
  Kasan.on_access k ~addr:(g + 20) ~size:1 ~is_write:false ~pc:2 ~hart:0;
  Alcotest.(check int) "partial-granule oob" 1 (Report.count sink);
  Kasan.on_access k ~addr:(g - 4) ~size:4 ~is_write:true ~pc:3 ~hart:0;
  Alcotest.(check int) "left redzone" 2 (Report.count sink)

let kasan_dedup () =
  let k, sink = mk_kasan () in
  Kasan.on_poison k ~addr:base ~size:64 Shadow.Heap_redzone;
  for _ = 1 to 5 do
    Kasan.on_access k ~addr:(base + 4) ~size:4 ~is_write:false ~pc:0xAB ~hart:0
  done;
  Alcotest.(check int) "one unique report" 1 (Report.count sink);
  let key = Report.dedup_key (List.hd (Report.unique_reports sink)) in
  Alcotest.(check int) "five hits" 5 (Report.hits sink key)

(* --- End-to-end: EmbSan on real firmware ------------------------------------------- *)

(* A miniature kernel with a bump allocator, symbol-conformant entry points
   and a mailbox syscall loop with injected bugs. *)
let tiny_kernel_src =
  {|
barr heap_pool[4096];
var heap_next = 0;

fun kmalloc(size) {
  var p = &heap_pool + heap_next;
  heap_next = heap_next + ((size + 7) & ~7);
  san_alloc(p, size);
  return p;
}

fun kfree(p) {
  san_free(p, 0);
  return 0;
}

fun sys_oob(n) {
  var p = kmalloc(16);
  store8(p + n, 0x41);      // n > 15: out of bounds
  kfree(p);
  return 0;
}

fun sys_uaf(n) {
  var p = kmalloc(24);
  kfree(p);
  if (n) { return load8(p + 2); }
  return 0;
}

fun sys_df(n) {
  var p = kmalloc(8);
  kfree(p);
  if (n) { kfree(p); }
  return 0;
}

// BUG: session objects are allocated per request and never released
fun sys_leak(n) {
  var s = kmalloc(24);
  if (s == 0) { return 0 - 12; }
  store32(s, n);
  return 0;
}

fun sys_spin(n) {
  var i = 0;
  while (i < n) { i = i + 1; }
  return i;
}

fun kmain() {
  san_poison(&heap_pool, 4096);
  store32(0xF0000228, 1);   // ready doorbell
  while (1) {
    if (load32(0xF0000200)) {
      var nr = load32(0xF0000204);
      var a = load32(0xF0000208);
      var ret = 0;
      if (nr == 1) { ret = sys_oob(a); }
      if (nr == 2) { ret = sys_uaf(a); }
      if (nr == 3) { ret = sys_df(a); }
      if (nr == 4) { ret = sys_leak(a); }
      if (nr == 5) { ret = sys_spin(a); }
      store32(0xF0000220, ret);
      store32(0xF0000224, 1);
    }
  }
}
|}

let build_firmware mode =
  Driver.compile_string
    ~cfg:{ Driver.default_config with mode; arch = Arch.Arm_ev }
    ~name:"tiny_kernel" tiny_kernel_src

let exercise session ~nr ~arg =
  let m = Embsan.make_machine session in
  let rt = Embsan.attach session m in
  (match Machine.run_until_ready m ~max_insns:5_000_000 with
  | None -> ()
  | Some s -> Alcotest.failf "boot failed: %a" Machine.pp_stop s);
  Devices.mailbox_push m.mailbox ~nr ~args:[| arg |];
  (match Machine.run_until_mailbox_idle m ~max_insns:5_000_000 with
  | None -> ()
  | Some s -> Alcotest.failf "syscall crashed the machine: %a" Machine.pp_stop s);
  Embsan.reports rt

let embsan_c_detects () =
  let session =
    Embsan.prepare ~sanitizers:Embsan.kasan_only
      ~firmware:(Embsan.Instrumented (build_firmware Codegen.Trap_callout))
      ()
  in
  let check name nr arg kind loc =
    match exercise session ~nr ~arg with
    | [ r ] ->
        Alcotest.(check string) (name ^ " kind") (Report.kind_name kind)
          (Report.kind_name r.kind);
        Alcotest.(check (option string)) (name ^ " location") (Some loc) r.location
    | l -> Alcotest.failf "%s: expected 1 report, got %d" name (List.length l)
  in
  check "oob" 1 20 Report.Oob_access "sys_oob";
  check "uaf" 2 1 Report.Use_after_free "sys_uaf";
  (* C-mode double-free reports locate at the glue callout *)
  check "df" 3 1 Report.Double_free "sys_df";
  (* benign argument: no report *)
  Alcotest.(check int) "benign uaf arg" 0 (List.length (exercise session ~nr:2 ~arg:0))

let embsan_d_detects () =
  let session =
    Embsan.prepare ~sanitizers:Embsan.kasan_only
      ~firmware:(Embsan.Source (build_firmware Codegen.Plain, Prober.no_hints))
      ()
  in
  Alcotest.(check bool) "kmalloc intercepted" true
    (List.exists
       (fun f -> f.Dsl.f_name = "kmalloc")
       session.s_spec.Dsl.functions);
  let kinds_of nr arg =
    List.map (fun (r : Report.t) -> r.Report.kind) (exercise session ~nr ~arg)
  in
  Alcotest.(check bool) "oob detected" true (List.mem Report.Oob_access (kinds_of 1 20));
  Alcotest.(check bool) "uaf detected" true
    (List.mem Report.Use_after_free (kinds_of 2 1));
  Alcotest.(check bool) "df detected" true (List.mem Report.Double_free (kinds_of 3 1));
  Alcotest.(check int) "clean run clean" 0 (List.length (exercise session ~nr:2 ~arg:0))

let embsan_spec_text () =
  let session =
    Embsan.prepare ~sanitizers:Embsan.all_sanitizers
      ~firmware:(Embsan.Source (build_firmware Codegen.Plain, Prober.no_hints))
      ()
  in
  let text = Embsan.spec_text session in
  (* the spec must round-trip through the DSL *)
  let back = Dsl.parse text in
  Alcotest.(check string) "dsl roundtrip" text (Dsl.to_string back);
  Alcotest.(check bool) "mentions kmalloc" true (contains text "kmalloc");
  Alcotest.(check bool) "poisons heap" true (contains text "heap")

let embsan_binary_mode () =
  (* closed-source firmware: strip symbols, infer allocators dynamically.
     Make boot perform a few allocations so the heuristic has signal. *)
  let src =
    {|
barr heap_pool[4096];
var heap_next = 0;
fun kmalloc(size) {
  var p = &heap_pool + heap_next;
  heap_next = heap_next + ((size + 7) & ~7);
  san_alloc(p, size);
  return p;
}
fun kfree(p) { san_free(p, 0); return 0; }
var bootbuf1 = 0;
var bootbuf2 = 0;
fun sys_oob(n) {
  var p = kmalloc(16);
  store8(p + n, 0x41);
  kfree(p);
  return 0;
}
fun kmain() {
  bootbuf1 = kmalloc(32);
  bootbuf2 = kmalloc(48);
  var tmp = kmalloc(16);
  kfree(tmp);
  store32(0xF0000228, 1);
  while (1) {
    if (load32(0xF0000200)) {
      var nr = load32(0xF0000204);
      var a = load32(0xF0000208);
      var ret = 0;
      if (nr == 1) { ret = sys_oob(a); }
      store32(0xF0000220, ret);
      store32(0xF0000224, 1);
    }
  }
}
|}
  in
  let img =
    Driver.compile_string
      ~cfg:{ Driver.default_config with mode = Codegen.Plain }
      ~name:"closed" src
  in
  let session =
    Embsan.prepare ~sanitizers:Embsan.kasan_only
      ~firmware:(Embsan.Binary (img, Prober.no_hints))
      ()
  in
  Alcotest.(check bool) "image stripped" true (Image.is_stripped session.s_image);
  Alcotest.(check bool) "alloc inferred" true
    (List.exists
       (fun f -> match f.Dsl.f_kind with `Alloc _ -> true | `Free _ -> false)
       session.s_spec.Dsl.functions);
  let reports = exercise session ~nr:1 ~arg:24 in
  Alcotest.(check bool) "oob detected on stripped binary" true
    (List.exists (fun (r : Report.t) -> r.kind = Report.Oob_access) reports);
  (* stripped: no symbolized location *)
  List.iter
    (fun (r : Report.t) ->
      Alcotest.(check (option string)) "no symbols" None r.location)
    reports

(* KCSAN end-to-end: two harts racing on a shared counter. *)
let embsan_kcsan_race () =
  let src =
    {|
var shared = 0;
var stop_flag = 0;

fun racer() {
  while (stop_flag == 0) {
    shared = shared + 1;
  }
  while (1) { }
}

fun kmain() {
  trap3(10, 1, &racer, __stack_top - 0x10000);
  store32(0xF0000228, 1);
  while (1) {
    if (load32(0xF0000200)) {
      var nr = load32(0xF0000204);
      var ret = 0;
      if (nr == 1) {
        var i = 0;
        while (i < 3000) { shared = shared + 1; i = i + 1; }
        ret = shared;
      }
      store32(0xF0000220, ret);
      store32(0xF0000224, 1);
    }
  }
}
|}
  in
  let img =
    Driver.compile_string
      ~cfg:{ Driver.default_config with mode = Codegen.Plain }
      ~name:"racy" src
  in
  let session =
    Embsan.prepare ~sanitizers:Embsan.kcsan_only
      ~firmware:(Embsan.Source (img, Prober.no_hints))
      ()
  in
  let m = Embsan.make_machine session in
  let rt = Embsan.attach ~kcsan_interval:60 ~kcsan_stall:800 session m in
  (match Machine.run_until_ready m ~max_insns:5_000_000 with
  | None -> ()
  | Some s -> Alcotest.failf "boot failed: %a" Machine.pp_stop s);
  Devices.mailbox_push m.mailbox ~nr:1 ~args:[||];
  (match Machine.run_until_mailbox_idle m ~max_insns:20_000_000 with
  | None -> ()
  | Some s -> Alcotest.failf "run stopped: %a" Machine.pp_stop s);
  let races =
    List.filter (fun (r : Report.t) -> r.kind = Report.Data_race) (Embsan.reports rt)
  in
  Alcotest.(check bool) "data race detected" true (races <> [])

(* Prober mode 1 records the boot-time sanitizer actions. *)
let prober_instrumented_records () =
  let img = build_firmware Codegen.Trap_callout in
  let p = Prober.probe_instrumented img in
  Alcotest.(check bool) "ready reached" true (p.p_ready_insns > 0);
  (* heap_pool poison recorded *)
  Alcotest.(check bool) "heap poison recorded" true
    (List.exists
       (function Dsl.Poison { code = "heap"; size; _ } -> size = 4096 | _ -> false)
       p.p_init);
  (* global registrations recorded *)
  Alcotest.(check bool) "global region recorded" true
    (List.exists (function Dsl.Region _ -> true | _ -> false) p.p_init)

let prober_requires_symbols () =
  let img = Image.strip (build_firmware Codegen.Plain) in
  match Prober.probe_symbols img with
  | _ -> Alcotest.fail "expected probe error on stripped image"
  | exception Prober.Probe_error _ -> ()

(* S5 adaptability: the kmemleak functionality plugs into the same
   Distiller/DSL/Runtime pipeline and works in both modes. *)
let embsan_kmemleak_third_sanitizer () =
  List.iter
    (fun firmware ->
      let session =
        Embsan.prepare
          ~sanitizers:(Embsan.with_kmemleak Embsan.kasan_only)
          ~firmware ()
      in
      Alcotest.(check bool) "kmemleak in spec" true
        (List.mem "kmemleak" session.s_spec.Dsl.sanitizers);
      (* func_alloc args merged: kasan's (ptr,size) u kmemleak's (ptr,size,pc) *)
      (match Dsl.find_intercept session.s_spec Api_spec.P_func_alloc with
      | Some i -> Alcotest.(check (list string)) "merged alloc args"
          [ "pc"; "ptr"; "size" ]
          (List.sort compare i.i_args)
      | None -> Alcotest.fail "no func_alloc intercept");
      let m = Embsan.make_machine session in
      let rt = Embsan.attach session m in
      (match Machine.run_until_ready m ~max_insns:5_000_000 with
      | None -> ()
      | Some s -> Alcotest.failf "boot failed: %a" Machine.pp_stop s);
      let syscall nr arg =
        Devices.mailbox_push m.mailbox ~nr ~args:[| arg |];
        ignore (Machine.run_until_mailbox_idle m ~max_insns:5_000_000)
      in
      (* leak six session objects, then age them past the grace window *)
      for i = 1 to 6 do syscall 4 i done;
      syscall 5 30_000;
      Alcotest.(check int) "no report before scan" 0 (Report.count rt.sink);
      let fresh = Runtime.scan_leaks rt in
      Alcotest.(check int) "one leak site" 1 fresh;
      match Embsan.reports rt with
      | [ r ] ->
          Alcotest.(check string) "kind" "memory-leak" (Report.kind_name r.kind);
          Alcotest.(check (option string)) "location" (Some "sys_leak") r.location
      | l -> Alcotest.failf "expected 1 report, got %d" (List.length l))
    [
      Embsan.Instrumented (build_firmware Codegen.Trap_callout);
      Embsan.Source (build_firmware Codegen.Plain, Prober.no_hints);
    ]

(* --- Sanitizer plugin architecture ----------------------------------------------- *)

(* The compiled per-point dispatch plans must agree with the reference
   semantics [Dsl.wants] for arbitrary specs: a sanitizer is in the plan
   of a point iff the spec selects it, the DSL intercept names it there,
   a plugin is registered under that name, and the plugin subscribes to
   the point.  Unknown names ("mystery") must be skipped, duplicates
   collapsed. *)
let all_points =
  [
    Api_spec.P_load;
    Api_spec.P_store;
    Api_spec.P_func_alloc;
    Api_spec.P_func_free;
    Api_spec.P_global_register;
    Api_spec.P_stack_poison;
    Api_spec.P_stack_unpoison;
  ]

let plan_matches_wants =
  let open QCheck2 in
  let san_names = [ "kasan"; "kcsan"; "kmemleak"; "ualign"; "mystery" ] in
  let intercept_gen =
    Gen.(
      pair (oneofl all_points) (list_size (int_range 0 4) (oneofl san_names))
      >|= fun (p, sans) ->
      {
        Dsl.i_point = p;
        i_args = [ "addr"; "size" ];
        i_handlers =
          List.map (fun s -> { Dsl.h_san = s; h_op = "op"; h_args = [] }) sans;
      })
  in
  let spec_gen =
    Gen.(
      pair
        (list_size (int_range 0 5) (oneofl san_names))
        (list_size (int_range 0 7) intercept_gen)
      >|= fun (sans, intercepts) ->
      { Dsl.empty with sanitizers = List.sort_uniq compare sans; intercepts })
  in
  Test.make ~name:"compiled plan = Dsl.wants reference" ~count:100 spec_gen
    (fun spec ->
      Ualign.register ();
      List.for_all
        (fun mode ->
          let m =
            Machine.create ~harts:1 ~ram_base:0x1_0000 ~ram_size:0x1_0000
              ~arch:Arch.Arm_ev ()
          in
          let rt = Runtime.attach ~spec ~mode m in
          List.for_all
            (fun point ->
              let plan = Runtime.plan_names rt point in
              List.length plan = List.length (List.sort_uniq compare plan)
              && List.for_all
                   (fun san ->
                     let reference =
                       List.mem san spec.Dsl.sanitizers
                       && Dsl.wants spec point san
                       &&
                       match Sanitizer.find san with
                       | Some p -> Sanitizer.supports p point
                       | None -> false
                     in
                     List.mem san plan = reference)
                   san_names)
            all_points)
        [ Runtime.C; Runtime.D ])

(* Satellite: the binary-searched (sorted, merged) exempt ranges must agree
   with a naive linear scan over the original overlapping range list. *)
let pc_exempt_matches_linear =
  let open QCheck2 in
  let range_gen =
    Gen.(
      pair (int_bound 0x400) (int_bound 48) >|= fun (lo, len) -> (lo, lo + len))
  in
  Test.make ~name:"pc_exempt = linear reference" ~count:200
    Gen.(
      pair
        (list_size (int_range 0 40) range_gen)
        (list_size (int_range 1 60) (int_bound 0x460)))
    (fun (ranges, pcs) ->
      let spec =
        {
          Dsl.empty with
          sanitizers = [ "kasan" ];
          exempts =
            List.map
              (fun (lo, hi) -> { Dsl.e_name = "e"; e_addr = lo; e_size = hi - lo })
              ranges;
        }
      in
      let m =
        Machine.create ~harts:1 ~ram_base:0x1_0000 ~ram_size:0x1_0000
          ~arch:Arch.Arm_ev ()
      in
      let rt = Runtime.attach ~spec ~mode:Runtime.D m in
      List.for_all
        (fun pc ->
          let naive =
            List.exists (fun (lo, hi) -> pc >= lo && pc < hi) ranges
          in
          Runtime.pc_exempt rt pc = naive)
        pcs)

(* Satellite: the EmbSan-D allocator-interception stacks are per-hart and
   bounded, and a snapshot restore drops in-flight entries left behind by
   a crash mid-allocator instead of leaking them into the next run. *)
let pending_allocs_bounded_and_restored () =
  let session =
    Embsan.prepare ~sanitizers:Embsan.kasan_only
      ~firmware:(Embsan.Source (build_firmware Codegen.Plain, Prober.no_hints))
      ()
  in
  let m = Embsan.make_machine session in
  let rt = Embsan.attach session m in
  (match Machine.run_until_ready m ~max_insns:5_000_000 with
  | None -> ()
  | Some s -> Alcotest.failf "boot failed: %a" Machine.pp_stop s);
  let kmalloc =
    match
      List.find_opt
        (fun f -> f.Dsl.f_name = "kmalloc")
        session.s_spec.Dsl.functions
    with
    | Some f -> f.Dsl.f_addr
    | None -> Alcotest.fail "kmalloc not intercepted"
  in
  Alcotest.(check int) "idle" 0 (Runtime.pending_depth rt ~hart:0);
  let snap = Runtime.save rt in
  (* allocator entries whose returns never happen (crash / tail call) *)
  let enter pc =
    Probe.fire_call m.probes { Probe.c_hart = 0; c_pc = pc; c_target = kmalloc }
  in
  enter 0x100;
  enter 0x200;
  Alcotest.(check int) "two in flight" 2 (Runtime.pending_depth rt ~hart:0);
  (* a snapshot restore must not carry the abandoned entries over *)
  Runtime.restore rt snap;
  Alcotest.(check int) "restore clears in-flight" 0
    (Runtime.pending_depth rt ~hart:0);
  (* unbounded re-entry must saturate at the stack capacity, not grow *)
  for i = 1 to 100 do
    enter (0x1000 + (8 * i))
  done;
  Alcotest.(check int) "bounded" Runtime.pending_capacity
    (Runtime.pending_depth rt ~hart:0);
  (* a matching return resolves the newest frame *)
  Probe.fire_ret m.probes
    {
      Probe.r_hart = 0;
      r_pc = kmalloc;
      r_target = 0x1000 + (8 * 100) + Insn.size;
      r_retval = 0x2_0000;
    };
  Alcotest.(check int) "return pops"
    (Runtime.pending_capacity - 1)
    (Runtime.pending_depth rt ~hart:0);
  (* state is keyed to its runtime: cross-runtime restore is an error *)
  let m2 = Embsan.make_machine session in
  let rt2 = Embsan.attach session m2 in
  match Runtime.restore rt2 snap with
  | () -> Alcotest.fail "expected Invalid_argument on cross-runtime restore"
  | exception Invalid_argument _ -> ()

(* The fourth sanitizer: ualign plugs in through Api_spec + registry only
   (no runtime/machine/probe edits) and works under both backends, with
   its own reports and snapshot state. *)
let ualign_kernel_src =
  {|
barr buf[64];
barr heap_pool[1024];
var heap_next = 0;

fun kmalloc(size) {
  var p = &heap_pool + heap_next;
  heap_next = heap_next + ((size + 7) & ~7);
  san_alloc(p, size);
  return p;
}

fun kfree(p) {
  san_free(p, 0);
  return 0;
}

fun sys_ua(n) {
  if (n) { store32(&buf + 2, 7); }   // straddles the 4-byte boundary
  return 0;
}

fun kmain() {
  san_poison(&heap_pool, 1024);
  store32(0xF0000228, 1);   // ready doorbell
  while (1) {
    if (load32(0xF0000200)) {
      var nr = load32(0xF0000204);
      var a = load32(0xF0000208);
      var ret = 0;
      if (nr == 1) { ret = sys_ua(a); }
      store32(0xF0000220, ret);
      store32(0xF0000224, 1);
    }
  }
}
|}

let build_ua_firmware mode =
  Driver.compile_string
    ~cfg:{ Driver.default_config with mode; arch = Arch.Arm_ev }
    ~name:"ua_kernel" ualign_kernel_src

let embsan_ualign_fourth_sanitizer () =
  List.iter
    (fun firmware ->
      let session =
        Embsan.prepare
          ~sanitizers:(Embsan.with_ualign Embsan.kasan_only)
          ~firmware ()
      in
      Alcotest.(check bool) "ualign in spec" true
        (List.mem "ualign" session.s_spec.Dsl.sanitizers);
      Alcotest.(check bool) "ualign registered" true
        (List.mem "ualign" (Sanitizer.registered ()));
      let m = Embsan.make_machine session in
      let rt = Embsan.attach session m in
      (* deterministic plan order: header order, kasan before ualign *)
      Alcotest.(check (list string)) "store plan" [ "kasan"; "ualign" ]
        (Runtime.plan_names rt Api_spec.P_store);
      (match Machine.run_until_ready m ~max_insns:5_000_000 with
      | None -> ()
      | Some s -> Alcotest.failf "boot failed: %a" Machine.pp_stop s);
      let syscall nr arg =
        Devices.mailbox_push m.mailbox ~nr ~args:[| arg |];
        match Machine.run_until_mailbox_idle m ~max_insns:5_000_000 with
        | None -> ()
        | Some s -> Alcotest.failf "syscall crashed: %a" Machine.pp_stop s
      in
      syscall 1 0;
      Alcotest.(check int) "benign arg: clean" 0 (Report.count rt.sink);
      let snap = Runtime.save rt in
      syscall 1 1;
      (match
         List.filter
           (fun (r : Report.t) -> r.kind = Report.Unaligned_access)
           (Embsan.reports rt)
       with
      | [ r ] ->
          Alcotest.(check string) "sanitizer" "ualign" r.sanitizer;
          Alcotest.(check (option string)) "location" (Some "sys_ua") r.location
      | l ->
          Alcotest.failf "expected 1 unaligned-access report, got %d"
            (List.length l));
      (* ualign state rides the plugin-keyed snapshot like the builtins *)
      Runtime.restore rt snap;
      Alcotest.(check int) "reports rewound" 0 (Report.count rt.sink);
      let unaligned_count =
        match List.assoc_opt "ualign" (Runtime.plugin_stats rt) with
        | Some stats -> List.assoc "unaligned" stats
        | None -> -1
      in
      Alcotest.(check int) "ualign counter rewound" 0 unaligned_count)
    [
      Embsan.Instrumented (build_ua_firmware Codegen.Trap_callout);
      Embsan.Source (build_ua_firmware Codegen.Plain, Prober.no_hints);
    ]

(* --- ftrace: vector-clock laws ----------------------------------------------------- *)

(* The FastTrack rules are sound only if the clock algebra is: join must
   be an upper bound and associative/commutative/idempotent, leq a
   partial order, and epoch ordering must agree with the pointwise
   order.  All exposed by Ftrace.Vc precisely so these laws are
   pinnable. *)

let vc_gen =
  QCheck2.Gen.(
    int_range 2 8 >>= fun n ->
    array_size (return n) (int_range 0 1000) >>= fun a ->
    array_size (return n) (int_range 0 1000) >>= fun b ->
    array_size (return n) (int_range 0 1000) >>= fun c -> return (a, b, c))

let vc_join_laws =
  QCheck2.Test.make ~name:"Vc.join: upper bound, assoc, comm, idem" ~count:500
    vc_gen
    (fun (a, b, c) ->
      let open Ftrace.Vc in
      let j x y =
        let r = copy x in
        join r y;
        r
      in
      leq a (j a b)
      && leq b (j a b)
      && j (j a b) c = j a (j b c)
      && j a b = j b a
      && j a a = a)

let vc_epoch_order =
  QCheck2.Test.make ~name:"Vc.hb_epoch agrees with pointwise order" ~count:500
    QCheck2.Gen.(
      pair vc_gen (pair (int_range 1 1000) (int_range 0 7)))
    (fun ((v, _, _), (clock, hart)) ->
      let hart = hart mod Array.length v in
      let e = Ftrace.epoch ~clock ~hart in
      Ftrace.epoch_hart e = hart
      && Ftrace.epoch_clock e = clock
      && Ftrace.Vc.hb_epoch e v = (clock <= v.(hart)))

(* --- ftrace: FastTrack read/write rules -------------------------------------------- *)

let ft_create () =
  let sink = Report.create_sink () in
  let t =
    Ftrace.create ~sink ~symbolize:(fun _ -> None) ~base:0x1_0000
      ~limit:0x2_0000 ~harts:2 ()
  in
  (t, sink)

let ft_write t ~hart ~pc addr =
  Ftrace.on_access t ~pc ~addr ~size:4 ~is_write:true ~is_atomic:false ~hart

let ft_read t ~hart ~pc addr =
  Ftrace.on_access t ~pc ~addr ~size:4 ~is_write:false ~is_atomic:false ~hart

let races sink =
  List.filter
    (fun (r : Report.t) -> r.kind = Report.Data_race)
    (Report.unique_reports sink)

let ftrace_write_write_race () =
  let t, sink = ft_create () in
  ft_write t ~hart:0 ~pc:0x100 0x1_0100;
  ft_write t ~hart:1 ~pc:0x200 0x1_0100;
  (match races sink with
  | [ r ] ->
      Alcotest.(check string) "sanitizer" "ftrace" r.sanitizer;
      (* precise: the report carries the second access's pc, the detail
         names the first racing pc *)
      Alcotest.(check bool) "both pcs in the report" true
        (r.pc = 0x200 && contains r.detail "0x00000100")
  | l -> Alcotest.failf "expected 1 race, got %d" (List.length l));
  (* repeating the pair adds only the opposite-direction report (hart 0's
     write now races hart 1's): one unique report per racing pc pair,
     everything further deduped by the sink *)
  ft_write t ~hart:0 ~pc:0x100 0x1_0100;
  ft_write t ~hart:1 ~pc:0x200 0x1_0100;
  ft_write t ~hart:0 ~pc:0x100 0x1_0100;
  ft_write t ~hart:1 ~pc:0x200 0x1_0100;
  Alcotest.(check int) "deduped per direction" 2 (List.length (races sink))

let ftrace_release_acquire_no_race () =
  let t, sink = ft_create () in
  let lock = 0x1_0F00 in
  ft_write t ~hart:0 ~pc:0x100 0x1_0100;
  Ftrace.on_sync t ~hart:0 ~op:1 ~addr:lock (* release *);
  Ftrace.on_sync t ~hart:1 ~op:0 ~addr:lock (* acquire *);
  ft_write t ~hart:1 ~pc:0x200 0x1_0100;
  Alcotest.(check int) "no race across the edge" 0 (List.length (races sink));
  (* the lock word itself is a known sync slot: never reported *)
  ft_write t ~hart:0 ~pc:0x300 lock;
  ft_write t ~hart:1 ~pc:0x400 lock;
  Alcotest.(check int) "sync word excluded" 0 (List.length (races sink))

let ftrace_read_shared_write_race () =
  let t, sink = ft_create () in
  (* two concurrent readers promote to read-shared without racing *)
  ft_read t ~hart:0 ~pc:0x100 0x1_0200;
  ft_read t ~hart:1 ~pc:0x200 0x1_0200;
  Alcotest.(check int) "reads never race" 0 (List.length (races sink));
  (* an unsynchronized write races with the shared read set *)
  ft_write t ~hart:1 ~pc:0x300 0x1_0200;
  Alcotest.(check bool) "write-after-shared-read races" true
    (races sink <> [])

let ftrace_disjoint_bytes_no_race () =
  let t, sink = ft_create () in
  (* same 4-byte slot, non-overlapping byte ranges: no race *)
  Ftrace.on_access t ~pc:0x100 ~addr:0x1_0300 ~size:2 ~is_write:true
    ~is_atomic:false ~hart:0;
  Ftrace.on_access t ~pc:0x200 ~addr:0x1_0302 ~size:2 ~is_write:true
    ~is_atomic:false ~hart:1;
  Alcotest.(check int) "disjoint bytes" 0 (List.length (races sink));
  (* atomics are marked accesses: excluded from the rules entirely *)
  Ftrace.on_access t ~pc:0x300 ~addr:0x1_0400 ~size:4 ~is_write:true
    ~is_atomic:true ~hart:0;
  Ftrace.on_access t ~pc:0x400 ~addr:0x1_0400 ~size:4 ~is_write:true
    ~is_atomic:true ~hart:1;
  Alcotest.(check int) "atomics excluded" 0 (List.length (races sink))

let ftrace_irq_pseudo_lock () =
  let t, sink = ft_create () in
  let section hart pc =
    Ftrace.on_sync t ~hart ~op:2 ~addr:0 (* irq_off = acquire *);
    ft_write t ~hart ~pc 0x1_0500;
    Ftrace.on_sync t ~hart ~op:3 ~addr:0 (* irq_on = release *)
  in
  section 0 0x100;
  section 1 0x200;
  Alcotest.(check int) "irq-off sections ordered" 0 (List.length (races sink))

let ftrace_state_roundtrip () =
  let t, sink = ft_create () in
  let s = Ftrace.save t in
  ft_write t ~hart:0 ~pc:0x100 0x1_0600;
  Ftrace.restore t s;
  (* the pre-restore write was rewound with the rest of the metadata *)
  ft_write t ~hart:1 ~pc:0x200 0x1_0600;
  Alcotest.(check int) "restored state forgets the detour" 0
    (List.length (races sink))

(* --- ftrace: the zero-core-edit pin -------------------------------------------------- *)

(* The plugin claim, grep-pinned like ualign's: the detector arrives via
   Api_spec + registry + the public trap-handler hook only.  The Common
   Sanitizer Runtime and the engine's probe paths must not know it
   exists. *)
let ftrace_zero_core_edits () =
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* cwd is _build/default/test under `dune runtest`, the workspace root
     under `dune exec` -- accept either *)
  let resolve rel =
    if Sys.file_exists ("../" ^ rel) then "../" ^ rel else rel
  in
  List.iter
    (fun rel ->
      let path = resolve rel in
      Alcotest.(check bool)
        (Printf.sprintf "no \"ftrace\" in %s" rel)
        false
        (contains (String.lowercase_ascii (read_all path)) "ftrace"))
    [ "lib/core/runtime.ml"; "lib/emu/machine.ml"; "lib/emu/probe.ml" ]

let () =
  Alcotest.run "embsan_core"
    [
      ( "distiller",
        [
          Alcotest.test_case "union merge rules" `Quick distiller_union;
          Alcotest.test_case "single sanitizer" `Quick distiller_single;
          Alcotest.test_case "header parse errors" `Quick header_parser_rejects;
        ] );
      ( "dsl",
        [
          Alcotest.test_case "round trip" `Quick dsl_roundtrip;
          Alcotest.test_case "parse errors" `Quick dsl_parse_errors;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "poison/unpoison/check" `Quick shadow_basics;
          Alcotest.test_case "partial granule" `Quick shadow_partial_granule;
          Alcotest.test_case "cross-granule start" `Quick shadow_cross_granule_start;
          QCheck_alcotest.to_alcotest shadow_qcheck;
          Alcotest.test_case "encoding byte round-trip" `Quick
            shadow_byte_roundtrip;
          QCheck_alcotest.to_alcotest shadow_partial_roundtrip;
        ] );
      ( "kasan",
        [
          Alcotest.test_case "heap lifecycle" `Quick kasan_heap_lifecycle;
          Alcotest.test_case "null deref" `Quick kasan_null_deref;
          Alcotest.test_case "global redzones" `Quick kasan_globals_redzone;
          Alcotest.test_case "dedup" `Quick kasan_dedup;
        ] );
      ( "prober",
        [
          Alcotest.test_case "mode 1 records init" `Quick prober_instrumented_records;
          Alcotest.test_case "mode 2 needs symbols" `Quick prober_requires_symbols;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "EmbSan-C detects heap bugs" `Quick embsan_c_detects;
          Alcotest.test_case "EmbSan-D detects heap bugs" `Quick embsan_d_detects;
          Alcotest.test_case "spec text round-trips" `Quick embsan_spec_text;
          Alcotest.test_case "binary mode on stripped firmware" `Quick
            embsan_binary_mode;
          Alcotest.test_case "KCSAN catches a data race" `Quick embsan_kcsan_race;
          Alcotest.test_case "kmemleak as a third sanitizer (S5)" `Quick
            embsan_kmemleak_third_sanitizer;
        ] );
      ( "plugins",
        [
          QCheck_alcotest.to_alcotest plan_matches_wants;
          QCheck_alcotest.to_alcotest pc_exempt_matches_linear;
          Alcotest.test_case "pending allocs bounded + restored" `Quick
            pending_allocs_bounded_and_restored;
          Alcotest.test_case "ualign as a fourth sanitizer" `Quick
            embsan_ualign_fourth_sanitizer;
        ] );
      ( "ftrace",
        [
          QCheck_alcotest.to_alcotest vc_join_laws;
          QCheck_alcotest.to_alcotest vc_epoch_order;
          Alcotest.test_case "write/write race" `Quick ftrace_write_write_race;
          Alcotest.test_case "release/acquire edge" `Quick
            ftrace_release_acquire_no_race;
          Alcotest.test_case "read-shared promotion" `Quick
            ftrace_read_shared_write_race;
          Alcotest.test_case "disjoint bytes and atomics" `Quick
            ftrace_disjoint_bytes_no_race;
          Alcotest.test_case "irq pseudo-lock" `Quick ftrace_irq_pseudo_lock;
          Alcotest.test_case "state save/restore" `Quick ftrace_state_roundtrip;
          Alcotest.test_case "zero core edits (grep pin)" `Quick
            ftrace_zero_core_edits;
        ] );
    ]
