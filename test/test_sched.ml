(* Tests for the fuzzer-controlled interleaving scheduler: determinism
   (equal draw streams replay equal schedules), engine invariance via the
   sched-transparency oracle, policy drawing, and disarm restoring the
   built-in rotation. *)

open Embsan_emu
module Sched = Embsan_sched.Sched
module Rng = Embsan_fuzz.Rng
module Progen = Embsan_check.Progen
module Oracle = Embsan_check.Oracle
module Snapshot = Embsan_check.Snapshot

(* A two-hart oracle machine running a generated program on both harts
   (same entry, disjoint stack windows) -- the same construction the
   sched-transparency oracle uses. *)
let two_hart_machine p =
  let m = Oracle.machine_of ~harts:2 p in
  Machine.start_hart m 1 ~pc:m.Machine.entry
    ~sp:(Machine.ram_base m + Machine.ram_size m - 16 - 0x8000);
  m

let arm_seeded ?policy ctl seed =
  let r = Rng.create ~seed in
  Sched.arm ?policy ctl ~draw:(fun n -> Rng.below r n)

let run_armed ~prog_seed ~sched_seed =
  let p = Progen.generate ~arch:Embsan_isa.Arch.Arm_ev ~seed:prog_seed in
  let m = two_hart_machine p in
  let ctl = Sched.create m in
  arm_seeded ctl sched_seed;
  let stop = Machine.run m ~max_insns:20_000 in
  (Snapshot.capture ~stop m, Sched.stats ctl, Sched.policy ctl)

let same_seed_same_interleaving () =
  List.iter
    (fun prog_seed ->
      let a = run_armed ~prog_seed ~sched_seed:42 in
      let b = run_armed ~prog_seed ~sched_seed:42 in
      let sa, stats_a, _ = a and sb, stats_b, _ = b in
      Alcotest.(check (list string))
        (Printf.sprintf "prog %d: same schedule, same state" prog_seed)
        [] (Snapshot.diff sa sb);
      Alcotest.(check bool) "same decision counts" true (stats_a = stats_b))
    [ 11; 12; 13; 14 ]

let different_seed_different_interleaving () =
  (* not universally true for any single program (one may halt before the
     schedules split), but across a handful at least one must differ *)
  let differs prog_seed =
    let sa, _, _ = run_armed ~prog_seed ~sched_seed:1 in
    let sb, _, _ = run_armed ~prog_seed ~sched_seed:2 in
    Snapshot.diff sa sb <> []
  in
  Alcotest.(check bool) "some program distinguishes the schedules" true
    (List.exists differs [ 11; 12; 13; 14; 15; 16; 17; 18 ])

let policy_drawing_covers_both () =
  let policies =
    List.init 64 (fun seed ->
        let p = Progen.generate ~arch:Embsan_isa.Arch.Arm_ev ~seed:21 in
        let m = two_hart_machine p in
        let ctl = Sched.create m in
        arm_seeded ctl seed;
        Sched.policy ctl)
  in
  Alcotest.(check bool) "slices drawn" true (List.mem Sched.Slices policies);
  Alcotest.(check bool) "priorities drawn" true
    (List.mem Sched.Priorities policies);
  (* the explicit override pins the policy regardless of the stream *)
  let p = Progen.generate ~arch:Embsan_isa.Arch.Arm_ev ~seed:21 in
  let ctl = Sched.create (two_hart_machine p) in
  arm_seeded ~policy:Sched.Priorities ctl 3;
  Alcotest.(check bool) "override respected" true
    (Sched.policy ctl = Sched.Priorities)

let disarm_restores_round_robin () =
  let p = Progen.generate ~arch:Embsan_isa.Arch.Arm_ev ~seed:31 in
  let run_plain () =
    let m = two_hart_machine p in
    let stop = Machine.run m ~max_insns:20_000 in
    Snapshot.capture ~stop m
  in
  let run_armed_then_disarmed () =
    let m = two_hart_machine p in
    let ctl = Sched.create m in
    arm_seeded ctl 7;
    Alcotest.(check bool) "armed" true (Sched.armed ctl);
    Sched.disarm ctl;
    Alcotest.(check bool) "disarmed" false (Sched.armed ctl);
    let stop = Machine.run m ~max_insns:20_000 in
    Snapshot.capture ~stop m
  in
  Alcotest.(check (list string)) "disarmed machine is round-robin" []
    (Snapshot.diff (run_plain ()) (run_armed_then_disarmed ()))

(* Directed sample of the sched-transparency oracle (the bounded seeded
   campaign lives in `make check-sched`): identical draw streams must
   drive Fast and Baseline through the same interleaving. *)
let sched_transparency_sample () =
  let cfg = Oracle.default_cfg in
  List.iter
    (fun seed ->
      let p = Progen.generate ~arch:Embsan_isa.Arch.Arm_ev ~seed in
      match Oracle.sched_transparency ~cfg p with
      | None, _ -> ()
      | Some d, _ ->
          Alcotest.failf "divergence: %a" Oracle.pp_divergence d)
    (List.init 20 (fun i -> 100 + i))

let () =
  Alcotest.run "embsan_sched"
    [
      ( "sched",
        [
          Alcotest.test_case "same seed, same interleaving" `Quick
            same_seed_same_interleaving;
          Alcotest.test_case "different seeds diverge" `Quick
            different_seed_different_interleaving;
          Alcotest.test_case "policy drawing" `Quick policy_drawing_covers_both;
          Alcotest.test_case "disarm restores round-robin" `Quick
            disarm_restores_round_robin;
          Alcotest.test_case "sched-transparency sample" `Quick
            sched_transparency_sample;
        ] );
    ]
