(* Tests for the model-free MMIO rehosting layer: the mmio-suite image
   boots and runs with zero hand-written device model, memoized responses
   make replays deterministic, the IRQ-gated use-after-free fires only
   under injected interrupts, rehost state (memo table + pending IRQs)
   round-trips through the snapshot service, arming never flushes the
   translation cache, rehost seeds ride the corpus and minimize toward
   None, and the jobs=4 orchestrator stays repetition-stable with
   rehosting on. *)

module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Machine = Embsan_emu.Machine
module Devices = Embsan_emu.Devices
module Replay = Embsan_guest.Replay
module Firmware_db = Embsan_guest.Firmware_db
module Defs = Embsan_guest.Defs
module Rehost = Embsan_rehost.Rehost
module Rng = Embsan_fuzz.Rng
module Campaign = Embsan_fuzz.Campaign
module Orch = Embsan_orch.Orch
module Snap = Embsan_snap.Snap
module Progen = Embsan_check.Progen
module Oracle = Embsan_check.Oracle

let fw = Firmware_db.mmio_suite_fw

let boot () = Replay.boot fw (Replay.Embsan_cfg Embsan.kasan_only)

(* Arm [ctl] the way the campaign does: MMIO responses from one seeded
   stream, the optional injection plan from another.  [irq_seed] forces
   every plan draw to that value, pinning the injection shape the test
   wants (0 = one interrupt, 16 insns out). *)
let arm ?irq_seed ctl ~seed =
  let mr = Rng.create ~seed in
  let irq = Option.map (fun v -> fun n -> min v (n - 1)) irq_seed in
  Rehost.arm ?irq ctl ~mmio:(fun () -> Rng.next mr)

let last_ret inst = inst.Replay.machine.Machine.mailbox.Devices.last_ret

let run_call inst ~nr ~args =
  match Replay.syscall inst ~nr ~args with
  | None -> last_ret inst
  | Some stop -> Alcotest.failf "syscall %d crashed: %a" nr Machine.pp_stop stop

(* --- boot + determinism ------------------------------------------------- *)

let boots_without_device_model () =
  let inst = boot () in
  (* the window is untouched during boot, so no rehosting was needed;
     the interrupt stub announced itself via trap 12 *)
  Alcotest.(check bool) "irq stub registered" true
    (inst.Replay.machine.Machine.irq_entry >= 0);
  Alcotest.(check int) "no rehost reads at boot" 0
    inst.Replay.machine.Machine.stats.Embsan_emu.Engine_stats.rehost_reads

let memo_replays_within_exec () =
  let inst = boot () in
  let ctl = Rehost.create inst.Replay.machine in
  arm ctl ~seed:7;
  let r1 = run_call inst ~nr:58 ~args:[| 0 |] in
  let sites = Rehost.memo_size ctl in
  let r2 = run_call inst ~nr:58 ~args:[| 0 |] in
  Alcotest.(check int) "same sites replay the same responses" r1 r2;
  Alcotest.(check int) "no new sites on the second call" sites
    (Rehost.memo_size ctl);
  Alcotest.(check bool) "reads served" true
    (inst.Replay.machine.Machine.stats.Embsan_emu.Engine_stats.rehost_reads > 0)

let same_seed_same_responses () =
  let once () =
    let inst = boot () in
    let ctl = Rehost.create inst.Replay.machine in
    arm ctl ~seed:41;
    ignore (run_call inst ~nr:56 ~args:[| 5; 9 |]);
    run_call inst ~nr:58 ~args:[| 0 |]
  in
  Alcotest.(check int) "same seed, same trajectory" (once ()) (once ());
  let inst = boot () in
  let ctl = Rehost.create inst.Replay.machine in
  arm ctl ~seed:42;
  ignore (run_call inst ~nr:56 ~args:[| 5; 9 |]);
  Alcotest.(check bool) "different seed diverges" true
    (run_call inst ~nr:58 ~args:[| 0 |] <> once ())

(* --- the IRQ-gated bug --------------------------------------------------- *)

let uaf_report reports =
  List.exists
    (fun (r : Report.t) ->
      r.Report.kind = Report.Use_after_free
      && r.Report.location = Some "mmio_irq_handler")
    reports

let bug_needs_injection () =
  (* without injection: the stale-pending window opens but nothing ever
     runs the handler *)
  let inst = boot () in
  let ctl = Rehost.create inst.Replay.machine in
  arm ctl ~seed:3;
  ignore (run_call inst ~nr:56 ~args:[| 5; 9 |]);
  ignore (run_call inst ~nr:57 ~args:[||]);
  ignore (run_call inst ~nr:58 ~args:[| 0 |]);
  Alcotest.(check bool) "no injection, no report" false
    (uaf_report (Report.unique_reports inst.Replay.sink));
  (* with injection: one interrupt lands inside the stale window *)
  let inst = boot () in
  let ctl = Rehost.create inst.Replay.machine in
  arm ctl ~seed:3;
  ignore (run_call inst ~nr:56 ~args:[| 5; 9 |]);
  ignore (run_call inst ~nr:57 ~args:[||]);
  (* re-arm with an immediate single-point plan: the next turn vectors
     into the stub while md_pending is stale *)
  arm ctl ~seed:3 ~irq_seed:1;
  ignore (run_call inst ~nr:58 ~args:[| 0 |]);
  Alcotest.(check bool) "injected interrupt finds the UAF" true
    (uaf_report (Report.unique_reports inst.Replay.sink));
  Alcotest.(check bool) "interrupt was injected" true
    (inst.Replay.machine.Machine.stats.Embsan_emu.Engine_stats.irq_injected > 0)

let injection_is_transparent () =
  (* a benign-window injection (descriptor still live) must not disturb
     the syscall's architectural result *)
  let run ~irq_seed =
    let inst = boot () in
    let ctl = Rehost.create inst.Replay.machine in
    (match irq_seed with
    | None -> arm ctl ~seed:11
    | Some s -> arm ctl ~seed:11 ~irq_seed:s);
    ignore (run_call inst ~nr:56 ~args:[| 1; 2 |]);
    let r = run_call inst ~nr:58 ~args:[| 0 |] in
    (r, Report.unique_reports inst.Replay.sink)
  in
  let r_plain, reports_plain = run ~irq_seed:None in
  let r_inj, reports_inj = run ~irq_seed:(Some 5) in
  Alcotest.(check int) "same syscall result under injection" r_plain r_inj;
  Alcotest.(check bool) "no reports in the live window" false
    (uaf_report reports_plain || uaf_report reports_inj)

(* --- snapshot round-trip -------------------------------------------------- *)

let snapshot_roundtrip () =
  let inst = boot () in
  let m = inst.Replay.machine in
  let ctl = Rehost.create m in
  arm ctl ~seed:9 ~irq_seed:2;
  let pending0 = Rehost.pending_irqs ctl in
  Alcotest.(check bool) "plan drawn" true (pending0 > 0);
  let snap = Snap.capture ?runtime:inst.Replay.rt m in
  let r1 = run_call inst ~nr:56 ~args:[| 5; 9 |] in
  Alcotest.(check bool) "memo grew" true (Rehost.memo_size ctl > 0);
  ignore (Snap.restore snap);
  Alcotest.(check int) "memo table reverted" 0 (Rehost.memo_size ctl);
  Alcotest.(check int) "pending IRQs reverted" pending0
    (Rehost.pending_irqs ctl);
  Alcotest.(check bool) "in-flight interrupt reverted" false
    (Rehost.in_irq ctl);
  (* the campaign's per-exec pattern: restore + re-arm from the seed
     replays the identical trajectory *)
  arm ctl ~seed:9 ~irq_seed:2;
  let r2 = run_call inst ~nr:56 ~args:[| 5; 9 |] in
  Alcotest.(check int) "restore + re-arm replays" r1 r2

(* --- zero-flush discipline ------------------------------------------------ *)

let toggles_never_flush () =
  let inst = boot () in
  let m = inst.Replay.machine in
  let flushes0 = m.Machine.stats.Embsan_emu.Engine_stats.flushes_invalidate in
  let ctl = Rehost.create m in
  arm ctl ~seed:1;
  ignore (run_call inst ~nr:58 ~args:[| 0 |]);
  Rehost.disarm ctl;
  arm ctl ~seed:2 ~irq_seed:3;
  ignore (run_call inst ~nr:58 ~args:[| 0 |]);
  Rehost.disarm ctl;
  Machine.set_rehost m None;
  Alcotest.(check int) "arming/disarming the rehost layer never flushes"
    flushes0 m.Machine.stats.Embsan_emu.Engine_stats.flushes_invalidate

(* --- campaign integration ------------------------------------------------- *)

let rehost_cfg ~irq ~seed ~execs =
  {
    (Campaign.default_config fw) with
    sanitizers = Embsan.kasan_only;
    max_execs = execs;
    seed;
    use_rehost = true;
    use_irq = irq;
  }

let campaign_finds_with_injection () =
  let r = Campaign.run (rehost_cfg ~irq:true ~seed:3 ~execs:600) in
  match r.Campaign.r_found with
  | [ f ] ->
      Alcotest.(check string) "the IRQ-gated UAF" "mmio-suite/irq_uaf"
        f.Campaign.f_bug.Defs.b_id;
      Alcotest.(check bool) "confirmed on a fresh instance" true
        f.Campaign.f_confirmed;
      Alcotest.(check bool) "reproducer needs its rehost seed" true
        (f.Campaign.f_rehost <> None)
  | l -> Alcotest.failf "expected exactly the irq_uaf, got %d bugs" (List.length l)

let campaign_never_without_injection () =
  let r = Campaign.run (rehost_cfg ~irq:false ~seed:3 ~execs:600) in
  Alcotest.(check int) "no injection, no bug" 0
    (List.length r.Campaign.r_found);
  Alcotest.(check int) "and no architectural crashes either" 0
    r.Campaign.r_crashes

(* Rehost seeds minimize toward None: on a firmware whose bugs fire
   without the rehost layer (nothing touches the window), confirmation
   must drop the seed even though every execution drew one. *)
let minimizes_rehost_to_none () =
  let fw = Option.get (Firmware_db.find "OpenHarmony-stm32f407") in
  let cfg =
    {
      (Campaign.default_config fw) with
      max_execs = 1500;
      seed = 3;
      use_rehost = true;
      use_irq = true;
    }
  in
  let r = Campaign.run cfg in
  Alcotest.(check bool) "found bugs" true (r.Campaign.r_found <> []);
  List.iter
    (fun (f : Campaign.found) ->
      Alcotest.(check bool)
        (f.Campaign.f_bug.Defs.b_id ^ " confirmed") true f.Campaign.f_confirmed;
      Alcotest.(check bool)
        (f.Campaign.f_bug.Defs.b_id ^ " needs no rehost seed")
        true
        (f.Campaign.f_rehost = None))
    r.Campaign.r_found

(* jobs=4 with rehosting on: the merged result must be stable across
   repetitions — rehost seeds ride the frontier exchange
   deterministically. *)
let found_key (f : Campaign.found) =
  (f.Campaign.f_bug.Defs.b_id, f.Campaign.f_exec, f.Campaign.f_rehost,
   f.Campaign.f_confirmed)

let orch_key (r : Orch.result) =
  ( List.sort compare (List.map found_key r.Orch.o_campaign.Campaign.r_found),
    r.Orch.o_campaign.Campaign.r_execs,
    r.Orch.o_campaign.Campaign.r_corpus,
    r.Orch.o_campaign.Campaign.r_coverage,
    r.Orch.o_epochs )

let jobs4_rehost_stable () =
  let run () =
    let cfg =
      {
        (Orch.default_config ~jobs:4 ~epoch_execs:50 fw) with
        campaign = rehost_cfg ~irq:true ~seed:5 ~execs:400;
        jobs = 4;
      }
    in
    orch_key (Orch.run cfg)
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "jobs=4 rehosted campaign stable across two repetitions" true (a = b)

(* --- the rehost-transparency oracle ---------------------------------------- *)

(* Directed sample (the bounded seeded campaign lives in
   `make check-rehost`): with the layer armed on both engines, memoized
   responses and injection points must be engine-invariant. *)
let rehost_transparency_sample () =
  let cfg = Oracle.default_cfg in
  List.iter
    (fun seed ->
      let p = Progen.generate ~arch:Embsan_isa.Arch.Arm_ev ~seed in
      match Oracle.rehost_transparency ~cfg p with
      | None, _ -> ()
      | Some d, _ -> Alcotest.failf "divergence: %a" Oracle.pp_divergence d)
    (List.init 20 (fun i -> 100 + i))

(* --- the CLI flag table ----------------------------------------------------- *)

(* The header comment in bin/embsan_cli.ml documents each command's
   optional flags; this pin keeps it complete (--sched-seed and --ftrace
   had gone missing from it once). *)
let cli_flag_table_pinned () =
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* cwd is _build/default/test under `dune runtest`, the workspace root
     under `dune exec` -- accept either *)
  let rel = "bin/embsan_cli.ml" in
  let src = read_all (if Sys.file_exists ("../" ^ rel) then "../" ^ rel else rel) in
  let find_sub ?(from = 0) hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > hn then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go from
  in
  let header =
    match find_sub src "*)" with
    | Some stop -> String.sub src 0 stop
    | None -> Alcotest.fail "no header comment in embsan_cli.ml"
  in
  (* collect every long flag name declared as  info [ "name"; ... ] *)
  let flags = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n - 5 do
    if String.sub src !i 4 = "info" then begin
      let k = ref (!i + 4) in
      while !k < n && (src.[!k] = ' ' || src.[!k] = '\n') do incr k done;
      if !k < n && src.[!k] = '[' then begin
        incr k;
        let stop = ref false in
        while (not !stop) && !k < n do
          match src.[!k] with
          | ']' -> stop := true
          | '"' ->
              let e = String.index_from src (!k + 1) '"' in
              flags := String.sub src (!k + 1) (e - !k - 1) :: !flags;
              k := e + 1
          | _ -> incr k
        done
      end
    end;
    incr i
  done;
  let long = List.filter (fun f -> String.length f > 1) !flags in
  Alcotest.(check bool) "CLI declares flags" true (long <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "--%s documented in the header table" f)
        true
        (find_sub header ("--" ^ f) <> None))
    (List.sort_uniq compare long)

let () =
  Alcotest.run "embsan_rehost"
    [
      ( "rehost",
        [
          Alcotest.test_case "boots with zero device model" `Quick
            boots_without_device_model;
          Alcotest.test_case "memo replays within an exec" `Quick
            memo_replays_within_exec;
          Alcotest.test_case "same seed, same responses" `Quick
            same_seed_same_responses;
          Alcotest.test_case "bug needs injection" `Quick bug_needs_injection;
          Alcotest.test_case "injection is transparent" `Quick
            injection_is_transparent;
          Alcotest.test_case "snapshot round-trip" `Quick snapshot_roundtrip;
          Alcotest.test_case "toggles never flush" `Quick toggles_never_flush;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "finds the UAF with injection" `Slow
            campaign_finds_with_injection;
          Alcotest.test_case "never finds it without injection" `Slow
            campaign_never_without_injection;
          Alcotest.test_case "minimizes rehost seeds to None" `Slow
            minimizes_rehost_to_none;
          Alcotest.test_case "jobs=4 repetition-stable" `Slow
            jobs4_rehost_stable;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "rehost-transparency sample" `Slow
            rehost_transparency_sample;
        ] );
      ( "cli",
        [
          Alcotest.test_case "flag table pinned" `Quick cli_flag_table_pinned;
        ] );
    ]
