(* Tests for the snapshot service (lib/snap): per-device save/restore
   round-trips, capture/restore identity on architectural state
   (property-based), O(touched) restore cost, and end-to-end restore of
   the host-side sanitizer runtime. *)

open Embsan_emu
module Snap = Embsan_snap.Snap
module Snapshot = Embsan_check.Snapshot
module Report = Embsan_core.Report
module Embsan = Embsan_core.Embsan
module Replay = Embsan_guest.Replay
module Firmware_db = Embsan_guest.Firmware_db

(* --- per-device round-trips ------------------------------------------------ *)

let dev_write (d : Device.t) ~offset ~value = d.write ~offset ~width:4 ~value
let dev_read (d : Device.t) ~offset = d.read ~offset ~width:4

let uart_roundtrip () =
  let state, dev = Devices.uart () in
  String.iter
    (fun c -> dev_write dev ~offset:0 ~value:(Char.code c))
    "checkpoint";
  let saved = dev.save () in
  String.iter (fun c -> dev_write dev ~offset:0 ~value:(Char.code c)) "-junk";
  Alcotest.(check string) "mutated" "checkpoint-junk" (Devices.uart_output state);
  dev.restore saved;
  Alcotest.(check string) "reverted" "checkpoint" (Devices.uart_output state)

let rng_roundtrip () =
  let dev = Devices.rng ~seed:42 in
  for _ = 1 to 5 do
    ignore (dev_read dev ~offset:0)
  done;
  let saved = dev.save () in
  let run () = List.init 8 (fun _ -> dev_read dev ~offset:0) in
  let first = run () in
  dev.restore saved;
  Alcotest.(check (list int)) "stream replays" first (run ())

let mailbox_roundtrip () =
  let state, dev = Devices.mailbox () in
  Devices.mailbox_push state ~nr:7 ~args:[| 1; 2; 3 |];
  Devices.mailbox_push state ~nr:9 ~args:[| 4; 5; 6 |];
  dev_write dev ~offset:0x28 ~value:1 (* ready doorbell *);
  (* serve the first request: read NR (pops), write RET, complete *)
  Alcotest.(check int) "nr" 7 (dev_read dev ~offset:0x04);
  dev_write dev ~offset:0x20 ~value:123;
  dev_write dev ~offset:0x24 ~value:1;
  let saved = dev.save () in
  (* mutate past the checkpoint: serve the second request, push a third *)
  Alcotest.(check int) "nr2" 9 (dev_read dev ~offset:0x04);
  dev_write dev ~offset:0x20 ~value:456;
  dev_write dev ~offset:0x24 ~value:1;
  Devices.mailbox_push state ~nr:11 ~args:[| 0; 0; 0 |];
  Alcotest.(check int) "two completions" 2
    (List.length (Devices.mailbox_completions state));
  (* host wiring installed before restore must survive it *)
  let completions_seen = ref 0 in
  state.on_complete <- (fun _ -> incr completions_seen);
  dev.restore saved;
  Alcotest.(check bool) "ready survives" true (Devices.mailbox_ready state);
  (match Devices.mailbox_completions state with
  | [ { c_nr; ret } ] ->
      Alcotest.(check int) "completion nr" 7 c_nr;
      Alcotest.(check int) "completion ret" 123 ret
  | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l));
  (* the queued request is back and flows through the restored device *)
  Alcotest.(check int) "queued nr back" 9 (dev_read dev ~offset:0x04);
  Alcotest.(check int) "arg back" 5 (dev_read dev ~offset:0x0C);
  dev_write dev ~offset:0x20 ~value:99;
  dev_write dev ~offset:0x24 ~value:1;
  Alcotest.(check int) "wiring survives restore" 1 !completions_seen;
  Alcotest.(check bool) "idle after draining" true (Devices.mailbox_idle state)

(* --- capture/restore identity ---------------------------------------------- *)

let ram_base = 0x1_0000
let ram_size = 256 * 1024 (* 64 pages *)

(* Every device registered on the machine (uart, power, mailbox, timer,
   rng) must survive a Snap capture/restore bit-identically: after
   arbitrary MMIO traffic on both sides of the checkpoint, each device's
   [save] blob equals its blob at capture time. *)
let device_op =
  QCheck2.Gen.(
    pair
      (pair (int_range 0 31) bool)
      (pair (int_range 0 0xFC) (int_range 0 0xFFFF_FFFF)))

let device_traffic m ops =
  let ds = m.Machine.devices in
  List.iteri
    (fun i ((di, is_read), (off, value)) ->
      let d = ds.(di mod Array.length ds) in
      let off = off land lnot 3 in
      if i land 7 = 0 then
        Devices.mailbox_push m.Machine.mailbox ~nr:(value land 0xFF)
          ~args:[| off; value; i |];
      if is_read then ignore (d.Device.read ~offset:off ~width:4 : int)
      else
        try d.Device.write ~offset:off ~width:4 ~value
        with Fault.Halted _ -> () (* the power-off register *))
    ops

let make_machine () =
  Machine.create ~harts:2 ~ram_base ~ram_size ~arch:Embsan_isa.Arch.Arm_ev ()

(* Apply a deterministic batch of state mutations derived from [writes]:
   RAM stores (width-aligned), register writes and pc bumps. *)
let mutate m writes =
  List.iter
    (fun (off, width, value) ->
      let off = off mod (ram_size - 4) in
      let off = off - (off mod width) in
      Machine.write_mem m ~addr:(ram_base + off) ~width ~value;
      let h = m.Machine.harts.(off mod Array.length m.Machine.harts) in
      h.Cpu.regs.(1 + (value mod (Embsan_isa.Reg.count - 1))) <-
        value land 0xFFFF_FFFF;
      h.Cpu.pc <- ram_base + (value land 0xFFC))
    writes

let restore_identity =
  QCheck2.Test.make ~name:"restore is identity on architectural state"
    ~count:50
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60)
           (triple (int_range 0 (ram_size - 1)) (oneofl [ 1; 2; 4 ])
              (int_range 0 0xFFFF_FFFF)))
        (list_size (int_range 0 60)
           (triple (int_range 0 (ram_size - 1)) (oneofl [ 1; 2; 4 ])
              (int_range 0 0xFFFF_FFFF))))
    (fun (pre, post) ->
      let m = make_machine () in
      mutate m pre;
      let snap = Snap.capture m in
      let reference = Snapshot.capture m in
      mutate m post;
      let reverted = Snap.restore snap in
      let after = Snapshot.capture m in
      (* O(touched): never more pages than distinct page-touching writes *)
      reverted <= List.length post
      && Snapshot.diff reference after = []
      (* a second restore has nothing left to revert *)
      && Snap.restore snap = 0
      && Snapshot.diff reference (Snapshot.capture m) = [])

let all_devices_roundtrip =
  QCheck2.Test.make
    ~name:"every registered device survives Snap round-trip bit-identically"
    ~count:50
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50) device_op)
        (list_size (int_range 0 50) device_op))
    (fun (pre, post) ->
      let m = make_machine () in
      device_traffic m pre;
      let snap = Snap.capture m in
      let blobs = Array.map (fun d -> d.Device.save ()) m.Machine.devices in
      device_traffic m post;
      ignore (Snap.restore snap : int);
      Array.for_all2
        (fun (d : Device.t) blob -> d.Device.save () = blob)
        m.Machine.devices blobs)

let restore_cost_is_o_touched () =
  let m = make_machine () in
  let snap = Snap.capture m in
  List.iter
    (fun touched ->
      for p = 0 to touched - 1 do
        Machine.write_mem m
          ~addr:(ram_base + (p * Ram.page_size))
          ~width:4 ~value:0xDEAD
      done;
      Alcotest.(check int)
        (Printf.sprintf "%d pages tracked" touched)
        touched (Snap.dirty_pages m);
      Alcotest.(check int)
        (Printf.sprintf "%d pages reverted" touched)
        touched (Snap.restore snap))
    [ 1; 7; 33; 64 ]

let full_restore_for_stale_snapshot () =
  let m = make_machine () in
  let older = Snap.capture m in
  Machine.write_mem m ~addr:ram_base ~width:4 ~value:1;
  let newer = Snap.capture m in
  (* capturing [newer] cleared the snap channel: [older] must be restored
     with ~full, and doing so reverts every page *)
  Machine.write_mem m ~addr:ram_base ~width:4 ~value:2;
  Alcotest.(check int) "full revert moves all pages"
    (ram_size / Ram.page_size)
    (Snap.restore ~full:true older);
  Alcotest.(check int) "word back" 0
    (Machine.read_mem m ~addr:ram_base ~width:4);
  Alcotest.(check int) "newer still usable via full" (ram_size / Ram.page_size)
    (Snap.restore ~full:true newer);
  Alcotest.(check int) "newer word" 1 (Machine.read_mem m ~addr:ram_base ~width:4)

(* --- sanitizer runtime state ------------------------------------------------ *)

(* End to end on a real firmware: trigger a KASAN bug, restore, and check
   that the report sink (and its dedup table) reverted -- re-triggering
   after the restore must produce the report again, not hit the dedup. *)
let runtime_state_restores () =
  let fw = Option.get (Firmware_db.find "OpenHarmony-stm32f407") in
  let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
  let snap =
    Snap.capture ?runtime:inst.Replay.rt inst.Replay.machine
  in
  let bug = List.hd fw.fw_bugs in
  let report_titles () =
    List.map Report.title (Report.unique_reports inst.Replay.sink)
  in
  Alcotest.(check (list string)) "clean after boot" [] (report_titles ());
  ignore (Replay.replay inst bug.b_syscalls);
  let first = report_titles () in
  Alcotest.(check bool) "trigger reports" true (first <> []);
  ignore (Snap.restore snap : int);
  Alcotest.(check (list string)) "sink reverted" [] (report_titles ());
  ignore (Replay.replay inst bug.b_syscalls);
  Alcotest.(check (list string)) "re-trigger reports again" first
    (report_titles ())

let () =
  Alcotest.run "embsan_snap"
    [
      ( "devices",
        [
          Alcotest.test_case "uart round-trip" `Quick uart_roundtrip;
          Alcotest.test_case "rng round-trip" `Quick rng_roundtrip;
          Alcotest.test_case "mailbox round-trip" `Quick mailbox_roundtrip;
        ] );
      ( "snapshot",
        [
          QCheck_alcotest.to_alcotest restore_identity;
          QCheck_alcotest.to_alcotest all_devices_roundtrip;
          Alcotest.test_case "restore cost is O(touched)" `Quick
            restore_cost_is_o_touched;
          Alcotest.test_case "stale snapshot needs ~full" `Quick
            full_restore_for_stale_snapshot;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "sanitizer state restores" `Quick
            runtime_state_restores;
        ] );
    ]
