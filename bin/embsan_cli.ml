(* embsan: command-line front end.

     embsan list                         firmware inventory
     embsan probe  <firmware>            pre-testing probing phase; print DSL
     embsan run    <firmware> <nr> <args...>   one syscall under EmbSan
     embsan repro  <firmware> <bug-id> [--ftrace] [--sched-seed N]
                   [--rehost-seed N] [--irq]
                                         replay a bug's reproducer
     embsan fuzz   <firmware> [--execs N] [--seed N] [--cmplog] [--sched]
                   [--ftrace] [--rehost] [--irq]
                                         single-worker fuzzing campaign
     embsan campaign <firmware> [--jobs N] [--execs N] [--seed N]
                   [--exchange N] [--telemetry] [--cmplog] [--sched]
                   [--ftrace] [--rehost] [--irq]
                                         orchestrated multi-worker campaign
     embsan trace  <firmware> <nr> <args...> [--mem]
                                         block/call/return trace of a syscall
     embsan check  [--execs N] [--seed N] [--sync N] [--max-insns N]
                   [--arch ARCH] [--oracle NAME]
                                         differential-oracle engine check
     embsan disasm <firmware>            disassemble the built image

   The table above lists every optional flag each command accepts; a grep
   test (test/test_rehost.ml) pins it against the Arg.info declarations
   below, so keep the two in sync. *)

open Cmdliner
open Embsan_guest
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report

let find_fw name =
  match Firmware_db.find name with
  | Some fw -> Ok fw
  | None ->
      if String.equal name "syzbot-suite" then Ok Firmware_db.syzbot_suite_fw
      else if String.equal name "cmplog-gate" then Ok Firmware_db.cmplog_gate_fw
      else if String.equal name "race-suite" then Ok Firmware_db.race_suite_fw
      else if String.equal name "mmio-suite" then Ok Firmware_db.mmio_suite_fw
      else
        Error
          (Fmt.str "unknown firmware %S; try `embsan list` for the inventory"
             name)

let fw_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (find_fw s) in
  let print fmt fw = Fmt.string fmt fw.Firmware_db.fw_name in
  Arg.(
    required
    & pos 0 (some (conv (parse, print))) None
    & info [] ~docv:"FIRMWARE" ~doc:"Firmware name from `embsan list`.")

(* --- list ------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Fmt.pr "%-22s %-15s %-8s %-9s %-7s %-10s %s@." "Firmware" "Base OS" "Arch"
      "Inst." "Source" "Fuzzer" "Bugs";
    List.iter
      (fun fw ->
        Fmt.pr "%a %d@." Firmware_db.pp_table1_row fw
          (List.length fw.Firmware_db.fw_bugs))
      (Firmware_db.all
      @ [
          Firmware_db.syzbot_suite_fw;
          Firmware_db.race_suite_fw;
          Firmware_db.mmio_suite_fw;
        ])
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available firmware images")
    Term.(const run $ const ())

(* --- probe ------------------------------------------------------------------ *)

let probe_cmd =
  let run fw =
    let session =
      Embsan.prepare ~sanitizers:Embsan.all_sanitizers
        ~firmware:(Firmware_db.embsan_firmware fw)
        ()
    in
    Fmt.pr "# pre-testing probing phase for %s (%s)@." fw.Firmware_db.fw_name
      (Embsan_core.Runtime.mode_name session.s_mode);
    Fmt.pr "# dry run reached ready after %d instructions@."
      session.s_platform.p_ready_insns;
    List.iter (Fmt.pr "# note: %s@.") session.s_platform.p_notes;
    Fmt.pr "%s@." (Embsan.spec_text session)
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"Run the probing phase and print the resulting DSL specification")
    Term.(const run $ fw_arg)

(* --- run -------------------------------------------------------------------- *)

let run_cmd =
  let nr =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"NR" ~doc:"Syscall number.")
  in
  let args =
    Arg.(value & pos_right 1 int [] & info [] ~docv:"ARGS" ~doc:"Arguments.")
  in
  let run fw nr args =
    let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
    let o = Replay.replay inst [ (nr, Array.of_list args) ] in
    (match Embsan_emu.Devices.mailbox_completions inst.machine.mailbox with
    | { ret; _ } :: _ -> Fmt.pr "syscall %d -> %d (0x%x)@." nr ret ret
    | [] -> Fmt.pr "syscall %d did not complete@." nr);
    (match o.o_crash with
    | Some s -> Fmt.pr "machine stopped: %a@." Embsan_emu.Machine.pp_stop s
    | None -> ());
    List.iter (fun r -> Fmt.pr "%a@." Report.pp r) o.o_reports;
    Fmt.pr "(%d instructions, %d modeled cycles)@." o.o_insns o.o_cost
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute one syscall on a firmware under EmbSan")
    Term.(const run $ fw_arg $ nr $ args)

(* --- repro ------------------------------------------------------------------ *)

let repro_cmd =
  let bug_id =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"BUG-ID" ~doc:"Bug id, e.g. linux/nf_setrule.")
  in
  let ftrace =
    Arg.(
      value & flag
      & info [ "ftrace" ]
          ~doc:
            "Also attach the happens-before race detector.  Required to \
             reproduce race-suite bugs: sampled KCSAN misses them by design.")
  in
  let sched_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "sched-seed" ] ~docv:"N"
          ~doc:
            "Arm the interleaving scheduler with this seed during the \
             replay (schedule-dependent races need the seed a campaign \
             reported alongside the reproducer).")
  in
  let rehost_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "rehost-seed" ] ~docv:"N"
          ~doc:
            "Arm the model-free MMIO rehosting layer with this seed during \
             the replay (rehosted firmware needs the seed a campaign \
             reported alongside the reproducer; see `fuzz --rehost').")
  in
  let irq =
    Arg.(
      value & flag
      & info [ "irq" ]
          ~doc:
            "With --rehost-seed: also draw the interrupt-injection plan \
             from the seed, as `fuzz --rehost --irq' campaigns do.")
  in
  let run fw bug_id ftrace sched_seed rehost_seed irq =
    match
      List.find_opt (fun b -> String.equal b.Defs.b_id bug_id) fw.Firmware_db.fw_bugs
    with
    | None ->
        Fmt.epr "no bug %S in %s; known: %s@." bug_id fw.fw_name
          (String.concat ", " (List.map (fun b -> b.Defs.b_id) fw.fw_bugs));
        exit 1
    | Some bug ->
        let sanitizers =
          if ftrace then Embsan.with_ftrace Embsan.all_sanitizers
          else Embsan.all_sanitizers
        in
        let inst = Replay.boot fw (Replay.Embsan_cfg sanitizers) in
        (match sched_seed with
        | None -> ()
        | Some seed ->
            let ctl = Embsan_sched.Sched.create inst.Replay.machine in
            let r = Embsan_fuzz.Rng.create ~seed in
            Embsan_sched.Sched.arm ctl
              ~draw:(fun n -> Embsan_fuzz.Rng.below r n));
        (* the rehost layer arms after the scheduler so injection clamps
           compose with the chosen interleaving, exactly as in campaigns *)
        (match rehost_seed with
        | None -> ()
        | Some seed ->
            let ctl = Embsan_rehost.Rehost.create inst.Replay.machine in
            let root = Embsan_fuzz.Rng.create ~seed in
            let mr =
              Embsan_fuzz.Rng.split_stream root ~shard:0 ~stream:"mmio"
            in
            let irq_draw =
              if irq then begin
                let ir =
                  Embsan_fuzz.Rng.split_stream root ~shard:0 ~stream:"irq"
                in
                Some (fun n -> Embsan_fuzz.Rng.below ir n)
              end
              else None
            in
            Embsan_rehost.Rehost.arm ?irq:irq_draw ctl
              ~mmio:(fun () -> Embsan_fuzz.Rng.next mr));
        let o = Replay.replay inst bug.b_syscalls in
        List.iter (fun r -> Fmt.pr "%a@." Report.pp r) o.o_reports;
        (match o.o_crash with
        | Some s -> Fmt.pr "machine stopped: %a@." Embsan_emu.Machine.pp_stop s
        | None -> ());
        Fmt.pr "%s: %s@." bug.b_id
          (if Replay.detects bug o then "DETECTED" else "not detected")
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Replay a registered bug's reproducer under EmbSan")
    Term.(const run $ fw_arg $ bug_id $ ftrace $ sched_seed $ rehost_seed $ irq)

(* --- fuzz ------------------------------------------------------------------- *)

let fuzz_cmd =
  let execs =
    Arg.(value & opt int 2000 & info [ "execs" ] ~doc:"Execution budget.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let cmplog =
    Arg.(
      value & flag
      & info [ "cmplog" ]
          ~doc:
            "Compare-operand coverage: guest compares feed frontier \
             features and an operand dictionary for input-to-state \
             mutation (solves magic-value guards).")
  in
  let sched =
    Arg.(
      value & flag
      & info [ "sched" ]
          ~doc:
            "Schedule fuzzing: run each execution under a fuzzer-chosen \
             hart interleaving; the schedule seed is part of the corpus \
             entry and of reproducers.")
  in
  let ftrace =
    Arg.(
      value & flag
      & info [ "ftrace" ]
          ~doc:
            "Enable the happens-before race sanitizer (FastTrack vector \
             clocks) alongside the default sanitizer set.")
  in
  let rehost =
    Arg.(
      value & flag
      & info [ "rehost" ]
          ~doc:
            "Model-free MMIO rehosting: serve reads from unmapped device \
             registers out of a per-exec seeded stream behind a (pc, addr) \
             memoization table; the rehost seed is part of the corpus \
             entry and of reproducers.  Required for firmware with no \
             hand-written device model (e.g. mmio-suite).")
  in
  let irq =
    Arg.(
      value & flag
      & info [ "irq" ]
          ~doc:
            "With --rehost: inject interrupts at fuzzer-chosen retirement \
             points drawn from the rehost seed, vectoring the guest's \
             registered interrupt stub.")
  in
  let run fw execs seed cmplog sched ftrace rehost irq =
    let base = Embsan_fuzz.Campaign.default_config fw in
    let cfg =
      {
        base with
        max_execs = execs;
        seed;
        use_cmplog = cmplog;
        use_sched = sched;
        use_rehost = rehost;
        use_irq = irq;
        sanitizers =
          (if ftrace then Embsan.with_ftrace base.sanitizers
           else base.sanitizers);
      }
    in
    let r = Embsan_fuzz.Campaign.run cfg in
    Fmt.pr "%a@." Embsan_fuzz.Campaign.pp_result r
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a coverage-guided fuzzing campaign with EmbSan")
    Term.(
      const run $ fw_arg $ execs $ seed $ cmplog $ sched $ ftrace $ rehost
      $ irq)

(* --- campaign ---------------------------------------------------------------- *)

let campaign_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains (1..64).  Each worker owns its own machine, \
             runtime and post-boot snapshot and fuzzes a deterministic \
             sub-seed shard; 1 reduces bit-for-bit to the single-threaded \
             campaign.")
  in
  let execs =
    Arg.(
      value & opt int 2000
      & info [ "execs" ] ~doc:"Execution budget per worker.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let exchange =
    Arg.(
      value & opt int 100
      & info [ "exchange" ]
          ~doc:"Executions per worker between frontier exchanges.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ] ~doc:"Print per-epoch merged telemetry lines.")
  in
  let cmplog =
    Arg.(
      value & flag
      & info [ "cmplog" ]
          ~doc:
            "Compare-operand coverage in every worker (see `fuzz \
             --cmplog').")
  in
  let sched =
    Arg.(
      value & flag
      & info [ "sched" ]
          ~doc:"Schedule fuzzing in every worker (see `fuzz --sched').")
  in
  let ftrace =
    Arg.(
      value & flag
      & info [ "ftrace" ]
          ~doc:
            "Enable the happens-before race sanitizer in every worker \
             (see `fuzz --ftrace').")
  in
  let rehost =
    Arg.(
      value & flag
      & info [ "rehost" ]
          ~doc:"Model-free MMIO rehosting in every worker (see `fuzz \
                --rehost').")
  in
  let irq =
    Arg.(
      value & flag
      & info [ "irq" ]
          ~doc:
            "Fuzzer-scheduled interrupt injection in every worker (see \
             `fuzz --irq').")
  in
  let run fw jobs execs seed exchange telemetry cmplog sched ftrace rehost irq
      =
    let base = Embsan_fuzz.Campaign.default_config fw in
    let campaign =
      {
        base with
        max_execs = execs;
        seed;
        use_cmplog = cmplog;
        use_sched = sched;
        use_rehost = rehost;
        use_irq = irq;
        sanitizers =
          (if ftrace then Embsan.with_ftrace base.sanitizers
           else base.sanitizers);
      }
    in
    let cfg =
      {
        Embsan_orch.Orch.campaign;
        jobs;
        epoch_execs = exchange;
        on_telemetry =
          (if telemetry then
             Some (fun t -> Fmt.pr "%a@." Embsan_orch.Orch.pp_telemetry t)
           else None);
      }
    in
    match Embsan_orch.Orch.run cfg with
    | r -> Fmt.pr "%a@." Embsan_orch.Orch.pp_result r
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run an orchestrated fuzzing campaign over N worker domains with \
          frontier exchange and global triage")
    Term.(
      const run $ fw_arg $ jobs $ execs $ seed $ exchange $ telemetry $ cmplog
      $ sched $ ftrace $ rehost $ irq)

(* --- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let nr =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"NR" ~doc:"Syscall number.")
  in
  let args =
    Arg.(value & pos_right 1 int [] & info [] ~docv:"ARGS" ~doc:"Arguments.")
  in
  let mem = Arg.(value & flag & info [ "mem" ] ~doc:"Also trace memory accesses.") in
  let run fw nr args mem =
    let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
    let tracer = Embsan_emu.Trace.attach ~capacity:160 ~mem inst.machine in
    let image = fw.Firmware_db.fw_truth ~kcov:false Embsan_minic.Codegen.Plain in
    let symbolize pc =
      Option.map
        (fun (s : Embsan_isa.Image.symbol) -> s.name)
        (Embsan_isa.Image.symbol_at image pc)
    in
    (match Replay.syscall inst ~nr ~args:(Array.of_list args) with
    | None -> ()
    | Some s -> Fmt.pr "machine stopped: %a@." Embsan_emu.Machine.pp_stop s);
    Fmt.pr "%a@." (Embsan_emu.Trace.pp ~symbolize) tracer;
    Fmt.pr "(%d events total; newest %d shown)@."
      (Embsan_emu.Trace.total tracer)
      (List.length (Embsan_emu.Trace.events tracer))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Execute one syscall and print the block/call/return trace")
    Term.(const run $ fw_arg $ nr $ args $ mem)

(* --- check ------------------------------------------------------------------ *)

let check_cmd =
  let execs =
    Arg.(
      value & opt int 1000
      & info [ "execs" ] ~doc:"Random programs per architecture flavor.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let sync =
    Arg.(
      value & opt int 512
      & info [ "sync" ]
          ~doc:"Retired instructions between state comparisons.")
  in
  let max_insns =
    Arg.(
      value & opt int 4096
      & info [ "max-insns" ] ~doc:"Instruction budget per program run.")
  in
  let arch =
    Arg.(
      value & opt (some string) None
      & info [ "arch" ] ~docv:"ARCH"
          ~doc:"Check only this flavor (arm-ev, mips-ev or x86-ev).")
  in
  let oracle =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Run only this oracle (repeatable): fast-vs-baseline, \
             probe-transparency, flush-anytime, subscription-churn, \
             toggle-storm, restore-transparency, sched-transparency, \
             rehost-transparency or mode-agreement.  Default: all.")
  in
  let run execs seed sync max_insns arch oracles =
    let archs =
      match arch with
      | None -> Embsan_isa.Arch.all
      | Some s -> (
          match Embsan_isa.Arch.of_string s with
          | Some a -> [ a ]
          | None ->
              Fmt.epr "unknown arch %S@." s;
              exit 2)
    in
    let config =
      {
        Embsan_check.Harness.default_config with
        execs;
        seed;
        sync;
        max_insns;
        archs;
        oracles;
      }
    in
    (match Embsan_check.Harness.selected_oracles config with
    | _ -> ()
    | exception Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        exit 2);
    let s = Embsan_check.Harness.run config in
    Fmt.pr "%a@." Embsan_check.Harness.pp_summary s;
    if s.s_divergences <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential-oracle check of the dual execution engines \
          (fast-vs-baseline, probe transparency, flush-anytime, \
          subscription churn, toggle storm, sched/rehost/restore \
          transparency) and of the dual instrumentation backends \
          (mode-agreement); exits 1 on any divergence")
    Term.(const run $ execs $ seed $ sync $ max_insns $ arch $ oracle)

(* --- disasm ----------------------------------------------------------------- *)

let disasm_cmd =
  let run fw =
    let image = fw.Firmware_db.fw_build ~kcov:false Embsan_minic.Codegen.Plain in
    Fmt.pr "%a@." Embsan_isa.Image.pp image;
    match Embsan_isa.Image.section image "text" with
    | Some sec -> print_string (Embsan_isa.Disasm.section_listing image sec)
    | None -> Fmt.epr "no text section@."
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a firmware image")
    Term.(const run $ fw_arg)

let () =
  let doc = "EmbSan: sanitizing embedded operating systems under emulation" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "embsan" ~doc)
          [
            list_cmd;
            probe_cmd;
            run_cmd;
            repro_cmd;
            fuzz_cmd;
            campaign_cmd;
            trace_cmd;
            check_cmd;
            disasm_cmd;
          ]))
